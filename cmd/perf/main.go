// Command perf takes the repo's perf-trajectory data point: it runs the
// deterministic workload in internal/perf and writes PERF_9.json — the
// file `make perf-check` diffs against the committed baseline with
// cmd/benchdiff.
//
// Two metric families come out. The sim.* family is derived purely from
// the virtual clock and the cycle model (modeled Gbps-per-core, packet
// and event counts), so it is byte-stable across machines and gates
// tightly: any drift means the simulation itself changed. The wall.*
// family measures how fast this host's simulator chews through those
// same events (packets/sec, events/sec of wall time); it varies with
// hardware and load, so it is measured as the fastest of -repeat trials
// and ships with loose tolerances and gate=false — trend data and the
// `make perf-check` improvement floor, not a tight CI tripwire.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"repro/internal/perf"
)

// Metric is one comparable measurement in the perf file. Tolerance is
// the relative drift benchdiff allows in the worse direction before it
// fails; Gate false demotes the metric to informational.
type Metric struct {
	Name      string  `json:"name"`
	Value     float64 `json:"value"`
	Unit      string  `json:"unit"`
	Better    string  `json:"better"` // "higher" or "lower"
	Tolerance float64 `json:"tolerance"`
	Gate      bool    `json:"gate"`
}

// File is the PERF_9.json document.
type File struct {
	Schema  string   `json:"schema"`
	Metrics []Metric `json:"metrics"`
}

// Schema identifies the format to benchdiff.
const Schema = "repro-perf/v1"

// simTol absorbs float formatting noise on deterministic metrics; any
// real change to the simulation moves them far beyond it.
const simTol = 0.001

func main() {
	out := flag.String("out", "PERF_9.json", "write the perf report here (- for stdout)")
	quick := flag.Bool("quick", false, "quarter-length measurement window")
	repeat := flag.Int("repeat", 3, "measurement trials; the fastest wall time is kept")
	flag.Parse()

	wl := perf.DefaultWorkload()
	if *quick {
		wl.Window /= 4
	}

	// The sim.* report is identical every trial (and we verify that);
	// only the wall clock varies with host load, so keep the fastest
	// trial — the one with the least interference.
	var rep perf.Report
	var wall float64
	for i := 0; i < max(*repeat, 1); i++ {
		start := time.Now()
		r := perf.Run(wl)
		w := time.Since(start).Seconds()
		if i == 0 {
			rep, wall = r, w
			continue
		}
		if !reflect.DeepEqual(rep, r) {
			fmt.Fprintln(os.Stderr, "perf: report differs between trials; the workload is supposed to be deterministic")
			os.Exit(1)
		}
		if w < wall {
			wall = w
		}
	}

	var metrics []Metric
	for _, a := range rep.Arms {
		metrics = append(metrics,
			Metric{Name: "sim." + a.Mode + ".gbps_per_core", Value: a.GbpsPerCore,
				Unit: "gbps", Better: "higher", Tolerance: simTol, Gate: true},
			Metric{Name: "sim." + a.Mode + ".goodput_gbps", Value: a.Gbps(),
				Unit: "gbps", Better: "higher", Tolerance: simTol, Gate: true},
			Metric{Name: "sim." + a.Mode + ".packets", Value: float64(a.Packets),
				Unit: "packets", Better: "higher", Tolerance: simTol, Gate: true},
			Metric{Name: "sim." + a.Mode + ".events", Value: float64(a.Steps),
				Unit: "events", Better: "lower", Tolerance: simTol, Gate: true},
			Metric{Name: "sim.batch." + a.Mode + ".rx_frames_per_poll", Value: a.RxFramesPerPoll,
				Unit: "frames", Better: "higher", Tolerance: simTol, Gate: true},
			Metric{Name: "sim.batch." + a.Mode + ".tx_pkts_per_doorbell", Value: a.TxPktsPerDoorbell,
				Unit: "packets", Better: "higher", Tolerance: simTol, Gate: true},
		)
	}
	metrics = append(metrics,
		Metric{Name: "sim.speedup", Value: rep.Speedup,
			Unit: "ratio", Better: "higher", Tolerance: simTol, Gate: true},
		Metric{Name: "wall.packets_per_sec", Value: float64(rep.TotalPackets()) / wall,
			Unit: "pps", Better: "higher", Tolerance: 0.5, Gate: false},
		Metric{Name: "wall.events_per_sec", Value: float64(rep.TotalSteps()) / wall,
			Unit: "eps", Better: "higher", Tolerance: 0.5, Gate: false},
	)

	f := File{Schema: Schema, Metrics: metrics}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "perf: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "perf: %v\n", err)
		os.Exit(1)
	}
	for _, m := range metrics {
		fmt.Fprintf(os.Stderr, "%-28s %14.3f %s\n", m.Name, m.Value, m.Unit)
	}
	fmt.Fprintf(os.Stderr, "[perf: %d packets, %d events in %.2fs wall -> %s]\n",
		rep.TotalPackets(), rep.TotalSteps(), wall, *out)
}
