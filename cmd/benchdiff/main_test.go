package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const perfOld = `{
  "schema": "repro-perf/v1",
  "metrics": [
    {"name": "sim.offload.gbps_per_core", "value": 80.0, "unit": "gbps", "better": "higher", "tolerance": 0.001, "gate": true},
    {"name": "sim.offload.events", "value": 100000, "unit": "events", "better": "lower", "tolerance": 0.001, "gate": true},
    {"name": "wall.packets_per_sec", "value": 2000000, "unit": "pps", "better": "higher", "tolerance": 0.5, "gate": false}
  ]
}
`

func perfWith(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPerfIdenticalPasses(t *testing.T) {
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", perfOld)
	var out, errb strings.Builder
	if code := run([]string{old, new_}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on identical files\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "sim.offload.gbps_per_core") {
		t.Errorf("report missing metric rows:\n%s", out.String())
	}
}

func TestPerfInjectedRegressionFails(t *testing.T) {
	// The gated higher-is-better metric drops 10%: must exit nonzero.
	regressed := strings.Replace(perfOld, `"value": 80.0`, `"value": 72.0`, 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", regressed)
	var out, errb strings.Builder
	if code := run([]string{old, new_}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on injected regression, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", out.String())
	}
}

func TestPerfLowerIsBetterDirection(t *testing.T) {
	// events grows 10%: worse for a lower-is-better metric.
	regressed := strings.Replace(perfOld, `"value": 100000`, `"value": 110000`, 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", regressed)
	if code := run([]string{old, new_}, &strings.Builder{}, &strings.Builder{}); code != 1 {
		t.Fatalf("exit %d when a lower-is-better metric grows, want 1", code)
	}
	// And shrinking it is an improvement, not a failure.
	improved := strings.Replace(perfOld, `"value": 100000`, `"value": 90000`, 1)
	new2 := perfWith(t, "new2.json", improved)
	if code := run([]string{old, new2}, &strings.Builder{}, &strings.Builder{}); code != 0 {
		t.Fatalf("exit %d on an improvement, want 0", code)
	}
}

func TestUngatedDriftPasses(t *testing.T) {
	// wall pps halves — past tolerance but gate=false, so informational.
	noisy := strings.Replace(perfOld, `"value": 2000000`, `"value": 900000`, 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", noisy)
	var out strings.Builder
	if code := run([]string{old, new_}, &out, &strings.Builder{}); code != 0 {
		t.Fatalf("exit %d on ungated drift, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "worse") {
		t.Errorf("ungated drift not reported:\n%s", out.String())
	}
}

func TestGatedMetricDisappearingFails(t *testing.T) {
	dropped := strings.Replace(perfOld,
		`    {"name": "sim.offload.events", "value": 100000, "unit": "events", "better": "lower", "tolerance": 0.001, "gate": true},`+"\n", "", 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", dropped)
	var out strings.Builder
	if code := run([]string{old, new_}, &out, &strings.Builder{}); code != 1 {
		t.Fatalf("exit %d when a gated metric disappears, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("missing metric not reported:\n%s", out.String())
	}
}

// benchStream builds a minimal `go test -json -bench` stream; the result
// line is split across two output events like the real tool emits.
func benchStream(ns string) string {
	return strings.Join([]string{
		`{"Action":"start","Package":"repro"}`,
		`{"Action":"run","Package":"repro","Test":"BenchmarkFig16_Throughput"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkFig16_Throughput","Output":"BenchmarkFig16_Throughput            \t"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkFig16_Throughput","Output":"       1\t` + ns + ` ns/op\n"}`,
		`{"Action":"pass","Package":"repro","Test":"BenchmarkFig16_Throughput"}`,
	}, "\n") + "\n"
}

func TestBenchFormatAndTolerance(t *testing.T) {
	old := perfWith(t, "old.json", benchStream("1000000"))
	within := perfWith(t, "within.json", benchStream("1100000")) // +10% < default 20%
	past := perfWith(t, "past.json", benchStream("1300000"))     // +30% > default 20%

	if code := run([]string{old, within}, &strings.Builder{}, &strings.Builder{}); code != 0 {
		t.Fatalf("exit %d on +10%% ns/op under -tol 0.2, want 0", code)
	}
	var out strings.Builder
	if code := run([]string{old, past}, &out, &strings.Builder{}); code != 1 {
		t.Fatalf("exit %d on +30%% ns/op under -tol 0.2, want 1\n%s", code, out.String())
	}
	// A widened tolerance waves the same drift through.
	if code := run([]string{"-tol", "0.5", old, past}, &strings.Builder{}, &strings.Builder{}); code != 0 {
		t.Fatalf("exit %d on +30%% ns/op under -tol 0.5, want 0", code)
	}
}

func TestParseErrorsExitTwo(t *testing.T) {
	old := perfWith(t, "old.json", perfOld)
	garbage := perfWith(t, "garbage.json", "not a report\n")
	if code := run([]string{old, garbage}, &strings.Builder{}, &strings.Builder{}); code != 2 {
		t.Fatalf("exit %d on unparsable file, want 2", code)
	}
	if code := run([]string{old}, &strings.Builder{}, &strings.Builder{}); code != 2 {
		t.Fatalf("exit %d on missing argument, want 2", code)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	oldM := map[string]metric{"m": {name: "m", value: 0, better: "higher", gate: true}}
	newM := map[string]metric{"m": {name: "m", value: 5, better: "higher", tolerance: 0.001, gate: true}}
	rows, regressed := diff(oldM, newM)
	if len(rows) != 1 || !math.IsNaN(rows[0].delta) {
		t.Fatalf("zero-baseline delta should be NaN: %+v", rows)
	}
	// NaN drift on a gated metric is a regression: the comparison is
	// meaningless and must be looked at, not waved through.
	if !regressed {
		t.Error("NaN drift on a gated metric did not regress")
	}
	if _, regressed := diff(
		map[string]metric{"m": {name: "m", value: 0, gate: true}},
		map[string]metric{"m": {name: "m", value: 0, better: "higher", tolerance: 0.001, gate: true}},
	); regressed {
		t.Error("0 -> 0 should pass")
	}
}
