package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const perfOld = `{
  "schema": "repro-perf/v1",
  "metrics": [
    {"name": "sim.offload.gbps_per_core", "value": 80.0, "unit": "gbps", "better": "higher", "tolerance": 0.001, "gate": true},
    {"name": "sim.offload.events", "value": 100000, "unit": "events", "better": "lower", "tolerance": 0.001, "gate": true},
    {"name": "wall.packets_per_sec", "value": 2000000, "unit": "pps", "better": "higher", "tolerance": 0.5, "gate": false}
  ]
}
`

func perfWith(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPerfIdenticalPasses(t *testing.T) {
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", perfOld)
	var out, errb strings.Builder
	if code := run([]string{old, new_}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on identical files\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "sim.offload.gbps_per_core") {
		t.Errorf("report missing metric rows:\n%s", out.String())
	}
}

func TestPerfInjectedRegressionFails(t *testing.T) {
	// The gated higher-is-better metric drops 10%: must exit nonzero.
	regressed := strings.Replace(perfOld, `"value": 80.0`, `"value": 72.0`, 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", regressed)
	var out, errb strings.Builder
	if code := run([]string{old, new_}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on injected regression, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", out.String())
	}
}

func TestPerfLowerIsBetterDirection(t *testing.T) {
	// events grows 10%: worse for a lower-is-better metric.
	regressed := strings.Replace(perfOld, `"value": 100000`, `"value": 110000`, 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", regressed)
	if code := run([]string{old, new_}, &strings.Builder{}, &strings.Builder{}); code != 1 {
		t.Fatalf("exit %d when a lower-is-better metric grows, want 1", code)
	}
	// And shrinking it is an improvement, not a failure.
	improved := strings.Replace(perfOld, `"value": 100000`, `"value": 90000`, 1)
	new2 := perfWith(t, "new2.json", improved)
	if code := run([]string{old, new2}, &strings.Builder{}, &strings.Builder{}); code != 0 {
		t.Fatalf("exit %d on an improvement, want 0", code)
	}
}

func TestUngatedDriftPasses(t *testing.T) {
	// wall pps halves — past tolerance but gate=false, so informational.
	noisy := strings.Replace(perfOld, `"value": 2000000`, `"value": 900000`, 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", noisy)
	var out strings.Builder
	if code := run([]string{old, new_}, &out, &strings.Builder{}); code != 0 {
		t.Fatalf("exit %d on ungated drift, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "worse") {
		t.Errorf("ungated drift not reported:\n%s", out.String())
	}
}

func TestGatedMetricDisappearingFails(t *testing.T) {
	dropped := strings.Replace(perfOld,
		`    {"name": "sim.offload.events", "value": 100000, "unit": "events", "better": "lower", "tolerance": 0.001, "gate": true},`+"\n", "", 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", dropped)
	var out strings.Builder
	if code := run([]string{old, new_}, &out, &strings.Builder{}); code != 1 {
		t.Fatalf("exit %d when a gated metric disappears, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("missing metric not reported:\n%s", out.String())
	}
}

// benchStream builds a minimal `go test -json -bench` stream; the result
// line is split across two output events like the real tool emits.
func benchStream(ns string) string {
	return strings.Join([]string{
		`{"Action":"start","Package":"repro"}`,
		`{"Action":"run","Package":"repro","Test":"BenchmarkFig16_Throughput"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkFig16_Throughput","Output":"BenchmarkFig16_Throughput            \t"}`,
		`{"Action":"output","Package":"repro","Test":"BenchmarkFig16_Throughput","Output":"       1\t` + ns + ` ns/op\n"}`,
		`{"Action":"pass","Package":"repro","Test":"BenchmarkFig16_Throughput"}`,
	}, "\n") + "\n"
}

func TestBenchFormatAndTolerance(t *testing.T) {
	old := perfWith(t, "old.json", benchStream("1000000"))
	within := perfWith(t, "within.json", benchStream("1100000")) // +10% < default 20%
	past := perfWith(t, "past.json", benchStream("1300000"))     // +30% > default 20%

	if code := run([]string{old, within}, &strings.Builder{}, &strings.Builder{}); code != 0 {
		t.Fatalf("exit %d on +10%% ns/op under -tol 0.2, want 0", code)
	}
	var out strings.Builder
	if code := run([]string{old, past}, &out, &strings.Builder{}); code != 1 {
		t.Fatalf("exit %d on +30%% ns/op under -tol 0.2, want 1\n%s", code, out.String())
	}
	// A widened tolerance waves the same drift through.
	if code := run([]string{"-tol", "0.5", old, past}, &strings.Builder{}, &strings.Builder{}); code != 0 {
		t.Fatalf("exit %d on +30%% ns/op under -tol 0.5, want 0", code)
	}
}

func TestParseErrorsExitTwo(t *testing.T) {
	old := perfWith(t, "old.json", perfOld)
	garbage := perfWith(t, "garbage.json", "not a report\n")
	if code := run([]string{old, garbage}, &strings.Builder{}, &strings.Builder{}); code != 2 {
		t.Fatalf("exit %d on unparsable file, want 2", code)
	}
	if code := run([]string{old}, &strings.Builder{}, &strings.Builder{}); code != 2 {
		t.Fatalf("exit %d on missing argument, want 2", code)
	}
}

func TestMinFloorMetAndUnmet(t *testing.T) {
	// wall pps doubles: a 1.5x floor holds, a 2.5x floor does not.
	doubled := strings.Replace(perfOld, `"value": 2000000`, `"value": 4000000`, 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", doubled)
	var out strings.Builder
	if code := run([]string{"-min", "wall.packets_per_sec=1.5", old, new_}, &out, &strings.Builder{}); code != 0 {
		t.Fatalf("exit %d on a met 1.5x floor, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "min wall.packets_per_sec") {
		t.Errorf("met floor not reported:\n%s", out.String())
	}
	var errb strings.Builder
	if code := run([]string{"-min", "wall.packets_per_sec=2.5", old, new_}, &strings.Builder{}, &errb); code != 1 {
		t.Fatalf("exit %d on an unmet 2.5x floor, want 1", code)
	}
	if !strings.Contains(errb.String(), "improvement floor not met") {
		t.Errorf("unmet floor not explained:\n%s", errb.String())
	}
}

func TestMinMissingMetricFails(t *testing.T) {
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", perfOld)
	var errb strings.Builder
	if code := run([]string{"-min", "no.such.metric=1.5", old, new_}, &strings.Builder{}, &errb); code != 1 {
		t.Fatalf("exit %d when the floored metric is missing, want 1", code)
	}
	if !strings.Contains(errb.String(), "metric missing") {
		t.Errorf("missing floored metric not explained:\n%s", errb.String())
	}
}

func TestMinZeroOrNaNBaselineFails(t *testing.T) {
	// A zero baseline makes the ratio undefined: must fail, not divide
	// through to +Inf and wave the floor past.
	zeroed := strings.Replace(perfOld, `"value": 2000000`, `"value": 0`, 1)
	old := perfWith(t, "old.json", zeroed)
	new_ := perfWith(t, "new.json", perfOld)
	var errb strings.Builder
	if code := run([]string{"-min", "wall.packets_per_sec=1.5", old, new_}, &strings.Builder{}, &errb); code != 1 {
		t.Fatalf("exit %d on a zero baseline floor, want 1", code)
	}
	if !strings.Contains(errb.String(), "ratio undefined") {
		t.Errorf("zero baseline not explained:\n%s", errb.String())
	}
	if !checkMins(minFlags{"m": 1.5},
		map[string]metric{"m": {name: "m", value: 3}},
		map[string]metric{"m": {name: "m", value: math.NaN()}},
		&strings.Builder{}, &strings.Builder{}) {
		// NaN in NEW is undefined too — expected to fail.
	} else {
		t.Error("NaN new value passed the floor")
	}
}

func TestMinFlagParsing(t *testing.T) {
	old := perfWith(t, "old.json", perfOld)
	for _, bad := range []string{"nameonly", "=1.5", "m=", "m=abc", "m=-1", "m=0", "m=NaN"} {
		if code := run([]string{"-min", bad, old, old}, &strings.Builder{}, &strings.Builder{}); code != 2 {
			t.Errorf("exit %d on malformed -min %q, want 2", code, bad)
		}
	}
	// Repeated floors all apply: the second one is unmet on identical files.
	if code := run([]string{"-min", "wall.packets_per_sec=1.0", "-min", "sim.offload.events=1.5", old, old},
		&strings.Builder{}, &strings.Builder{}); code != 1 {
		t.Errorf("exit %d when one of two floors is unmet, want 1", code)
	}
}

func TestFloorsOnlySkipsToleranceDiff(t *testing.T) {
	// A gated sim metric regresses past tolerance, but the wall floor is
	// met: -floors-only must ignore the diff and pass on the floor alone.
	changed := strings.Replace(perfOld, `"value": 80.0`, `"value": 72.0`, 1)
	changed = strings.Replace(changed, `"value": 2000000`, `"value": 4000000`, 1)
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", changed)
	var out, errb strings.Builder
	code := run([]string{"-floors-only", "-min", "wall.packets_per_sec=1.5", old, new_}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d with -floors-only and met floor, want 0\n%s%s", code, out.String(), errb.String())
	}
	if strings.Contains(out.String(), "REGRESSION") || strings.Contains(out.String(), "gbps_per_core") {
		t.Errorf("-floors-only still printed the tolerance diff:\n%s", out.String())
	}
	// Same files through the normal path must still fail, proving the
	// flag is what suppressed the regression.
	if code := run([]string{old, new_}, &strings.Builder{}, &strings.Builder{}); code != 1 {
		t.Fatalf("exit %d without -floors-only, want 1", code)
	}
	// And an unmet floor still fails under -floors-only.
	code = run([]string{"-floors-only", "-min", "wall.packets_per_sec=3", old, new_}, &strings.Builder{}, &errb)
	if code != 1 {
		t.Fatalf("exit %d with -floors-only and unmet floor, want 1", code)
	}
}

func TestFloorsOnlyWithoutMinIsUsageError(t *testing.T) {
	old := perfWith(t, "old.json", perfOld)
	new_ := perfWith(t, "new.json", perfOld)
	var errb strings.Builder
	if code := run([]string{"-floors-only", old, new_}, &strings.Builder{}, &errb); code != 2 {
		t.Fatalf("exit %d for -floors-only without -min, want 2\n%s", code, errb.String())
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	oldM := map[string]metric{"m": {name: "m", value: 0, better: "higher", gate: true}}
	newM := map[string]metric{"m": {name: "m", value: 5, better: "higher", tolerance: 0.001, gate: true}}
	rows, regressed := diff(oldM, newM)
	if len(rows) != 1 || !math.IsNaN(rows[0].delta) {
		t.Fatalf("zero-baseline delta should be NaN: %+v", rows)
	}
	// NaN drift on a gated metric is a regression: the comparison is
	// meaningless and must be looked at, not waved through.
	if !regressed {
		t.Error("NaN drift on a gated metric did not regress")
	}
	if _, regressed := diff(
		map[string]metric{"m": {name: "m", value: 0, gate: true}},
		map[string]metric{"m": {name: "m", value: 0, better: "higher", tolerance: 0.001, gate: true}},
	); regressed {
		t.Error("0 -> 0 should pass")
	}
}
