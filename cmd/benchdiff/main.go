// Command benchdiff compares two performance report files and fails when
// the new one regresses past tolerance — the CI gate behind
// `make perf-check`.
//
//	benchdiff [-tol 0.2] [-min name=ratio ...] OLD NEW
//
// Both PERF files (cmd/perf's repro-perf/v1 JSON) and BENCH files (the
// `go test -json -bench` stream `make bench` writes) are accepted; the
// format is sniffed per file. PERF metrics carry their own per-metric
// tolerance, direction, and gate flag; BENCH ns/op metrics are wall-clock
// and use the -tol default (lower is better, gated).
//
// A metric regresses when it moves past its tolerance in the worse
// direction, and a gated metric that disappears from NEW is a regression
// too. Improvements and ungated drift are reported but never fail.
//
// -min name=ratio (repeatable) adds an improvement floor on top of the
// regression check: NEW's value must be at least ratio × OLD's. A metric
// missing from either file, or a zero/NaN baseline, fails the floor —
// an undefined ratio must be looked at, not waved through.
//
// -floors-only skips the tolerance diff and checks just the -min floors.
// Use it when OLD is an older baseline whose gated metrics have since
// changed on purpose (the floor still holds across the gap, but the
// tight per-metric tolerances would not). Requires at least one -min.
//
// Exit status: 0 clean, 1 regression or unmet floor, 2 usage or parse
// error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metric is one comparable measurement, whichever file format it came from.
type metric struct {
	name      string
	value     float64
	unit      string
	better    string // "higher" or "lower"
	tolerance float64
	gate      bool
}

// perfFile mirrors cmd/perf's output document.
type perfFile struct {
	Schema  string `json:"schema"`
	Metrics []struct {
		Name      string  `json:"name"`
		Value     float64 `json:"value"`
		Unit      string  `json:"unit"`
		Better    string  `json:"better"`
		Tolerance float64 `json:"tolerance"`
		Gate      bool    `json:"gate"`
	} `json:"metrics"`
}

// benchLine is one event of a `go test -json` stream.
type benchLine struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// nsPerOp matches the benchmark result line go test prints, possibly
// reassembled from several -json Output chunks.
var nsPerOp = regexp.MustCompile(`(Benchmark[\w/]+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

// parseMetrics sniffs the format and returns the file's metrics keyed by
// name. defTol and gate-by-default apply only to BENCH ns/op metrics,
// which carry no metadata of their own.
func parseMetrics(r io.Reader, defTol float64) (map[string]metric, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty report")
	}
	if bytes.HasPrefix(trimmed, []byte("{\n")) || bytes.Contains(trimmed[:min(len(trimmed), 256)], []byte(`"schema"`)) {
		return parsePerf(trimmed)
	}
	return parseBench(trimmed, defTol)
}

func parsePerf(data []byte) (map[string]metric, error) {
	var f perfFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	if !strings.HasPrefix(f.Schema, "repro-perf/") {
		return nil, fmt.Errorf("unknown schema %q", f.Schema)
	}
	out := make(map[string]metric, len(f.Metrics))
	for _, m := range f.Metrics {
		better := m.Better
		if better != "lower" {
			better = "higher"
		}
		out[m.Name] = metric{
			name: m.Name, value: m.Value, unit: m.Unit,
			better: better, tolerance: m.Tolerance, gate: m.Gate,
		}
	}
	return out, nil
}

func parseBench(data []byte, defTol float64) (map[string]metric, error) {
	// go test -json splits one logical output line across events, so
	// reassemble the full output text per benchmark before matching.
	perTest := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var ev benchLine
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("line %d: %v", lines+1, err)
		}
		lines++
		if ev.Action != "output" || ev.Test == "" {
			continue
		}
		b := perTest[ev.Test]
		if b == nil {
			b = &strings.Builder{}
			perTest[ev.Test] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]metric)
	for _, b := range perTest {
		for _, m := range nsPerOp.FindAllStringSubmatch(b.String(), -1) {
			v, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			out[m[1]+".ns_per_op"] = metric{
				name: m[1] + ".ns_per_op", value: v, unit: "ns/op",
				better: "lower", tolerance: defTol, gate: true,
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark results found")
	}
	return out, nil
}

// row is one line of the comparison report.
type row struct {
	name    string
	old     float64
	new     float64
	delta   float64 // relative change, NaN when old == 0
	verdict string  // "ok", "better", "worse", "REGRESSION", "MISSING"
}

// diff compares the two metric sets. Tolerance, direction, and gate come
// from the NEW file (the PR under test owns its contract); a gated
// metric missing from NEW regresses.
func diff(oldM, newM map[string]metric) (rows []row, regressed bool) {
	names := make([]string, 0, len(oldM))
	for name := range oldM {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		o := oldM[name]
		n, ok := newM[name]
		if !ok {
			r := row{name: name, old: o.value, new: math.NaN(), verdict: "MISSING"}
			if o.gate {
				regressed = true
			}
			rows = append(rows, r)
			continue
		}
		r := row{name: name, old: o.value, new: n.value}
		if o.value != 0 {
			r.delta = (n.value - o.value) / o.value
		} else if n.value == 0 {
			r.delta = 0
		} else {
			r.delta = math.NaN()
		}
		worse := r.delta
		if n.better == "higher" {
			worse = -worse
		}
		switch {
		case math.IsNaN(worse) || worse > n.tolerance:
			if n.gate {
				r.verdict = "REGRESSION"
				regressed = true
			} else {
				r.verdict = "worse"
			}
		case worse < -n.tolerance:
			r.verdict = "better"
		default:
			r.verdict = "ok"
		}
		rows = append(rows, r)
	}
	return rows, regressed
}

// minFlags collects repeated -min name=ratio requirements.
type minFlags map[string]float64

func (m minFlags) String() string {
	parts := make([]string, 0, len(m))
	for name, ratio := range m {
		parts = append(parts, fmt.Sprintf("%s=%g", name, ratio))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Set parses one name=ratio pair.
func (m minFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=ratio, got %q", s)
	}
	ratio, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(ratio) || ratio <= 0 {
		return fmt.Errorf("want a positive ratio, got %q", val)
	}
	m[name] = ratio
	return nil
}

// checkMins enforces the -min floors and reports whether all hold. Each
// floor is checked as new/old ≥ ratio; missing metrics and zero or NaN
// baselines fail because the ratio is undefined.
func checkMins(mins minFlags, oldM, newM map[string]metric, stdout, stderr io.Writer) bool {
	names := make([]string, 0, len(mins))
	for name := range mins {
		names = append(names, name)
	}
	sort.Strings(names)
	ok := true
	for _, name := range names {
		ratio := mins[name]
		o, haveOld := oldM[name]
		n, haveNew := newM[name]
		switch {
		case !haveOld || !haveNew:
			side := "OLD"
			if haveOld {
				side = "NEW"
			}
			fmt.Fprintf(stderr, "benchdiff: -min %s=%g: metric missing from the %s file\n", name, ratio, side)
			ok = false
		case o.value == 0 || math.IsNaN(o.value) || math.IsNaN(n.value):
			fmt.Fprintf(stderr, "benchdiff: -min %s=%g: ratio undefined (old=%v new=%v)\n", name, ratio, o.value, n.value)
			ok = false
		case n.value < ratio*o.value:
			fmt.Fprintf(stderr, "benchdiff: -min %s=%g: got %.3fx (%.3f -> %.3f)\n", name, ratio, n.value/o.value, o.value, n.value)
			ok = false
		default:
			fmt.Fprintf(stdout, "min %-33s %.3fx >= %gx\n", name, n.value/o.value, ratio)
		}
	}
	return ok
}

func fprintRows(w io.Writer, rows []row) {
	fmt.Fprintf(w, "%-36s %16s %16s %9s  %s\n", "metric", "old", "new", "delta", "verdict")
	for _, r := range rows {
		delta := "n/a"
		if !math.IsNaN(r.delta) && !math.IsNaN(r.new) {
			delta = fmt.Sprintf("%+.2f%%", r.delta*100)
		}
		fmt.Fprintf(w, "%-36s %16.3f %16.3f %9s  %s\n", r.name, r.old, r.new, delta, r.verdict)
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	defTol := fs.Float64("tol", 0.2, "default relative tolerance for metrics without their own (BENCH ns/op)")
	mins := minFlags{}
	fs.Var(mins, "min", "require NEW >= ratio*OLD for a metric, as name=ratio (repeatable)")
	floorsOnly := fs.Bool("floors-only", false, "skip the tolerance diff; check only the -min floors")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-tol 0.2] [-min name=ratio ...] [-floors-only] OLD NEW")
		return 2
	}
	if *floorsOnly && len(mins) == 0 {
		fmt.Fprintln(stderr, "benchdiff: -floors-only without any -min floor checks nothing")
		return 2
	}
	load := func(path string) (map[string]metric, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parseMetrics(f, *defTol)
	}
	oldM, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", fs.Arg(0), err)
		return 2
	}
	newM, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", fs.Arg(1), err)
		return 2
	}
	regressed := false
	if !*floorsOnly {
		rows, bad := diff(oldM, newM)
		fprintRows(stdout, rows)
		regressed = bad
	}
	minsOK := checkMins(mins, oldM, newM, stdout, stderr)
	if regressed {
		fmt.Fprintln(stderr, "benchdiff: REGRESSION past tolerance (regenerate the baseline only for intended changes)")
		return 1
	}
	if !minsOK {
		fmt.Fprintln(stderr, "benchdiff: improvement floor not met")
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
