// Command simlint is the repository's invariant linter: a multichecker
// driver for the analyzers in internal/analysis. It mechanically enforces
// the contracts DESIGN.md's "Invariants as analyzers" section maps out —
// virtual-clock purity and seeded randomness (virtclock), nil-safe
// telemetry hooks (nilhook), registry-mergeable and actually-registered
// Stats structs (statsreg), and checksum-safe frame mutation (wiremut).
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -list
//
// Exit status is 0 when clean, 1 when diagnostics were reported, and 2
// when loading or type-checking failed. `make lint` (part of `make
// check`) runs it over the whole module.
//
// Run it over ./... rather than package subsets: statsreg is a
// whole-program check, so a subset that defines a Stats struct but omits
// the package that registers it reports a false "never registered".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	diags := analysis.Run(prog, analysis.All)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", prog.Fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}
