// Command simlint is the repository's invariant linter: a multichecker
// driver for the analyzers in internal/analysis. It mechanically enforces
// the contracts DESIGN.md's "Invariants as analyzers" section maps out —
// virtual-clock purity and seeded randomness (virtclock), nil-safe
// telemetry hooks (nilhook), registry-mergeable and actually-registered
// Stats structs (statsreg), checksum-safe frame mutation (wiremut),
// canonical series names (seriesname), serial-phase-only frame pooling
// (framepool), lane-local ShardRun jobs (shardsafe), and allocation-free
// hot paths (hotalloc).
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -json ./...
//	go run ./cmd/simlint -baseline lint.baseline ./...
//	go run ./cmd/simlint -baseline lint.baseline -update-baseline ./...
//	go run ./cmd/simlint -list
//
// A finding is silenced either by a reasoned source annotation —
//
//	//lint:ignore <analyzer> <why this violation is sanctioned>
//
// on the offending line or the line above — or by an entry in the
// committed baseline file, which freezes existing findings so a new
// analyzer can land strict on new code only. Suppressed and baselined
// findings stay counted in the summary and in the -json report; a
// directive without a reason, or naming an unknown analyzer, is itself
// a finding.
//
// Exit status is 0 when clean, 1 when unsuppressed diagnostics were
// reported, and 2 when loading or type-checking failed. `make lint`
// (part of `make check`) runs it over the whole module with the
// committed baseline.
//
// Run it over ./... rather than package subsets: statsreg and shardsafe
// are whole-program checks, so a subset that defines a Stats struct but
// omits the package that registers it reports a false "never registered".
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit the diagnostics as a JSON report on stdout")
	baselinePath := flag.String("baseline", "", "baseline `file` of accepted diagnostics (see -update-baseline)")
	updateBaseline := flag.Bool("update-baseline", false, "rewrite the -baseline file from this run's findings and exit clean")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [-json] [-baseline file [-update-baseline]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintf(os.Stderr, "simlint: -update-baseline requires -baseline\n")
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	diags := analysis.Run(prog, analysis.All)

	// Suppression first: a //lint:ignore'd finding never reaches the
	// baseline, so baselines hold only the unargued backlog. Malformed
	// directives fold in as ordinary findings (and are themselves neither
	// suppressible nor baselined — an ignore must not excuse a broken
	// ignore).
	dirs, malformed := analysis.ParseDirectives(prog, analysis.All)
	kept, suppressed := analysis.ApplySuppressions(prog, diags, dirs)

	if *updateBaseline {
		if err := analysis.WriteBaseline(*baselinePath, prog, kept); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "simlint: wrote %d entr%s to %s\n",
			len(kept), plural(len(kept), "y", "ies"), *baselinePath)
		return 0
	}

	var baselined []analysis.Diagnostic
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
		kept, baselined = b.Apply(prog, kept)
	}

	kept = append(kept, malformed...)
	analysis.SortDiagnostics(prog, kept)

	if *jsonOut {
		report := analysis.BuildReport(prog, kept, suppressed, baselined)
		if err := report.Encode(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range kept {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", prog.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	if len(kept) > 0 || len(suppressed) > 0 || len(baselined) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d violation(s), %d suppressed, %d baselined\n",
			len(kept), len(suppressed), len(baselined))
	}
	if len(kept) > 0 {
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
