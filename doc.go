// Package repro is a from-scratch Go reproduction of "Autonomous NIC
// Offloads" (Pismenny et al., ASPLOS 2021): the offload architecture that
// accelerates layer-5 protocols (TLS, NVMe-TCP) on the NIC without
// migrating the TCP/IP stack into hardware.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmark harness in bench_test.go
// regenerates every table and figure of the paper's evaluation:
//
//	go test -bench=. -benchtime=1x .
package repro
